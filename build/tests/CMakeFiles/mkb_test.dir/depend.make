# Empty dependencies file for mkb_test.
# This may be replaced when dependencies are built.
