file(REMOVE_RECURSE
  "CMakeFiles/mkb_test.dir/mkb_test.cc.o"
  "CMakeFiles/mkb_test.dir/mkb_test.cc.o.d"
  "mkb_test"
  "mkb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
