# Empty dependencies file for federation_sim.
# This may be replaced when dependencies are built.
