file(REMOVE_RECURSE
  "CMakeFiles/federation_sim.dir/federation_sim.cpp.o"
  "CMakeFiles/federation_sim.dir/federation_sim.cpp.o.d"
  "federation_sim"
  "federation_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
