# Empty dependencies file for source_onboarding.
# This may be replaced when dependencies are built.
