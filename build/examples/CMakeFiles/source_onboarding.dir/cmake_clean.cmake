file(REMOVE_RECURSE
  "CMakeFiles/source_onboarding.dir/source_onboarding.cpp.o"
  "CMakeFiles/source_onboarding.dir/source_onboarding.cpp.o.d"
  "source_onboarding"
  "source_onboarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_onboarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
