# Empty compiler generated dependencies file for warehouse_churn.
# This may be replaced when dependencies are built.
