file(REMOVE_RECURSE
  "CMakeFiles/warehouse_churn.dir/warehouse_churn.cpp.o"
  "CMakeFiles/warehouse_churn.dir/warehouse_churn.cpp.o.d"
  "warehouse_churn"
  "warehouse_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
