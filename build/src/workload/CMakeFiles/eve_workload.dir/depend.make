# Empty dependencies file for eve_workload.
# This may be replaced when dependencies are built.
