file(REMOVE_RECURSE
  "libeve_workload.a"
)
