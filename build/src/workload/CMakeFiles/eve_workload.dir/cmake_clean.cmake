file(REMOVE_RECURSE
  "CMakeFiles/eve_workload.dir/generator.cc.o"
  "CMakeFiles/eve_workload.dir/generator.cc.o.d"
  "CMakeFiles/eve_workload.dir/travel_agency.cc.o"
  "CMakeFiles/eve_workload.dir/travel_agency.cc.o.d"
  "libeve_workload.a"
  "libeve_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
