file(REMOVE_RECURSE
  "CMakeFiles/eve_mkb.dir/builder.cc.o"
  "CMakeFiles/eve_mkb.dir/builder.cc.o.d"
  "CMakeFiles/eve_mkb.dir/capability_change.cc.o"
  "CMakeFiles/eve_mkb.dir/capability_change.cc.o.d"
  "CMakeFiles/eve_mkb.dir/constraints.cc.o"
  "CMakeFiles/eve_mkb.dir/constraints.cc.o.d"
  "CMakeFiles/eve_mkb.dir/evolution.cc.o"
  "CMakeFiles/eve_mkb.dir/evolution.cc.o.d"
  "CMakeFiles/eve_mkb.dir/mkb.cc.o"
  "CMakeFiles/eve_mkb.dir/mkb.cc.o.d"
  "CMakeFiles/eve_mkb.dir/serializer.cc.o"
  "CMakeFiles/eve_mkb.dir/serializer.cc.o.d"
  "libeve_mkb.a"
  "libeve_mkb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_mkb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
