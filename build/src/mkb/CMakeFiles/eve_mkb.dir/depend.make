# Empty dependencies file for eve_mkb.
# This may be replaced when dependencies are built.
