file(REMOVE_RECURSE
  "libeve_mkb.a"
)
