
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mkb/builder.cc" "src/mkb/CMakeFiles/eve_mkb.dir/builder.cc.o" "gcc" "src/mkb/CMakeFiles/eve_mkb.dir/builder.cc.o.d"
  "/root/repo/src/mkb/capability_change.cc" "src/mkb/CMakeFiles/eve_mkb.dir/capability_change.cc.o" "gcc" "src/mkb/CMakeFiles/eve_mkb.dir/capability_change.cc.o.d"
  "/root/repo/src/mkb/constraints.cc" "src/mkb/CMakeFiles/eve_mkb.dir/constraints.cc.o" "gcc" "src/mkb/CMakeFiles/eve_mkb.dir/constraints.cc.o.d"
  "/root/repo/src/mkb/evolution.cc" "src/mkb/CMakeFiles/eve_mkb.dir/evolution.cc.o" "gcc" "src/mkb/CMakeFiles/eve_mkb.dir/evolution.cc.o.d"
  "/root/repo/src/mkb/mkb.cc" "src/mkb/CMakeFiles/eve_mkb.dir/mkb.cc.o" "gcc" "src/mkb/CMakeFiles/eve_mkb.dir/mkb.cc.o.d"
  "/root/repo/src/mkb/serializer.cc" "src/mkb/CMakeFiles/eve_mkb.dir/serializer.cc.o" "gcc" "src/mkb/CMakeFiles/eve_mkb.dir/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/eve_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/eve_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eve_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eve_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eve_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
