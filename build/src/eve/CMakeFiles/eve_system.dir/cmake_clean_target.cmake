file(REMOVE_RECURSE
  "libeve_system.a"
)
