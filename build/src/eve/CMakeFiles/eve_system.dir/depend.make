# Empty dependencies file for eve_system.
# This may be replaced when dependencies are built.
