file(REMOVE_RECURSE
  "CMakeFiles/eve_system.dir/eve_system.cc.o"
  "CMakeFiles/eve_system.dir/eve_system.cc.o.d"
  "CMakeFiles/eve_system.dir/journal.cc.o"
  "CMakeFiles/eve_system.dir/journal.cc.o.d"
  "CMakeFiles/eve_system.dir/materialization.cc.o"
  "CMakeFiles/eve_system.dir/materialization.cc.o.d"
  "CMakeFiles/eve_system.dir/view_pool_io.cc.o"
  "CMakeFiles/eve_system.dir/view_pool_io.cc.o.d"
  "libeve_system.a"
  "libeve_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
