file(REMOVE_RECURSE
  "CMakeFiles/eve_hypergraph.dir/hypergraph.cc.o"
  "CMakeFiles/eve_hypergraph.dir/hypergraph.cc.o.d"
  "CMakeFiles/eve_hypergraph.dir/join_graph.cc.o"
  "CMakeFiles/eve_hypergraph.dir/join_graph.cc.o.d"
  "libeve_hypergraph.a"
  "libeve_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
