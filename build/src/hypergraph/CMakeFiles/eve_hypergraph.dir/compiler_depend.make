# Empty compiler generated dependencies file for eve_hypergraph.
# This may be replaced when dependencies are built.
