file(REMOVE_RECURSE
  "libeve_hypergraph.a"
)
