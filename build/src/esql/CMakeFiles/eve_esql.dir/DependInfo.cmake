
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/esql/binder.cc" "src/esql/CMakeFiles/eve_esql.dir/binder.cc.o" "gcc" "src/esql/CMakeFiles/eve_esql.dir/binder.cc.o.d"
  "/root/repo/src/esql/evaluator.cc" "src/esql/CMakeFiles/eve_esql.dir/evaluator.cc.o" "gcc" "src/esql/CMakeFiles/eve_esql.dir/evaluator.cc.o.d"
  "/root/repo/src/esql/view_definition.cc" "src/esql/CMakeFiles/eve_esql.dir/view_definition.cc.o" "gcc" "src/esql/CMakeFiles/eve_esql.dir/view_definition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/eve_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/eve_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eve_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eve_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eve_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
