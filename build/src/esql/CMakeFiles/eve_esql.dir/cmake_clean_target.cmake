file(REMOVE_RECURSE
  "libeve_esql.a"
)
