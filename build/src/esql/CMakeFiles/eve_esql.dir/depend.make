# Empty dependencies file for eve_esql.
# This may be replaced when dependencies are built.
