file(REMOVE_RECURSE
  "CMakeFiles/eve_esql.dir/binder.cc.o"
  "CMakeFiles/eve_esql.dir/binder.cc.o.d"
  "CMakeFiles/eve_esql.dir/evaluator.cc.o"
  "CMakeFiles/eve_esql.dir/evaluator.cc.o.d"
  "CMakeFiles/eve_esql.dir/view_definition.cc.o"
  "CMakeFiles/eve_esql.dir/view_definition.cc.o.d"
  "libeve_esql.a"
  "libeve_esql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_esql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
