file(REMOVE_RECURSE
  "CMakeFiles/eve_algebra.dir/eval.cc.o"
  "CMakeFiles/eve_algebra.dir/eval.cc.o.d"
  "CMakeFiles/eve_algebra.dir/executor.cc.o"
  "CMakeFiles/eve_algebra.dir/executor.cc.o.d"
  "CMakeFiles/eve_algebra.dir/expr.cc.o"
  "CMakeFiles/eve_algebra.dir/expr.cc.o.d"
  "libeve_algebra.a"
  "libeve_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
