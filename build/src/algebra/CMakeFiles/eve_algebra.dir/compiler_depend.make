# Empty compiler generated dependencies file for eve_algebra.
# This may be replaced when dependencies are built.
