file(REMOVE_RECURSE
  "libeve_algebra.a"
)
