
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/eval.cc" "src/algebra/CMakeFiles/eve_algebra.dir/eval.cc.o" "gcc" "src/algebra/CMakeFiles/eve_algebra.dir/eval.cc.o.d"
  "/root/repo/src/algebra/executor.cc" "src/algebra/CMakeFiles/eve_algebra.dir/executor.cc.o" "gcc" "src/algebra/CMakeFiles/eve_algebra.dir/executor.cc.o.d"
  "/root/repo/src/algebra/expr.cc" "src/algebra/CMakeFiles/eve_algebra.dir/expr.cc.o" "gcc" "src/algebra/CMakeFiles/eve_algebra.dir/expr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/eve_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eve_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eve_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
