file(REMOVE_RECURSE
  "CMakeFiles/eve_cvs.dir/cost_model.cc.o"
  "CMakeFiles/eve_cvs.dir/cost_model.cc.o.d"
  "CMakeFiles/eve_cvs.dir/cvs.cc.o"
  "CMakeFiles/eve_cvs.dir/cvs.cc.o.d"
  "CMakeFiles/eve_cvs.dir/delete_attribute.cc.o"
  "CMakeFiles/eve_cvs.dir/delete_attribute.cc.o.d"
  "CMakeFiles/eve_cvs.dir/explain.cc.o"
  "CMakeFiles/eve_cvs.dir/explain.cc.o.d"
  "CMakeFiles/eve_cvs.dir/extent.cc.o"
  "CMakeFiles/eve_cvs.dir/extent.cc.o.d"
  "CMakeFiles/eve_cvs.dir/implication.cc.o"
  "CMakeFiles/eve_cvs.dir/implication.cc.o.d"
  "CMakeFiles/eve_cvs.dir/legality.cc.o"
  "CMakeFiles/eve_cvs.dir/legality.cc.o.d"
  "CMakeFiles/eve_cvs.dir/r_mapping.cc.o"
  "CMakeFiles/eve_cvs.dir/r_mapping.cc.o.d"
  "CMakeFiles/eve_cvs.dir/r_replacement.cc.o"
  "CMakeFiles/eve_cvs.dir/r_replacement.cc.o.d"
  "CMakeFiles/eve_cvs.dir/rewriting.cc.o"
  "CMakeFiles/eve_cvs.dir/rewriting.cc.o.d"
  "CMakeFiles/eve_cvs.dir/svs_baseline.cc.o"
  "CMakeFiles/eve_cvs.dir/svs_baseline.cc.o.d"
  "libeve_cvs.a"
  "libeve_cvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_cvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
