
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cvs/cost_model.cc" "src/cvs/CMakeFiles/eve_cvs.dir/cost_model.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/cost_model.cc.o.d"
  "/root/repo/src/cvs/cvs.cc" "src/cvs/CMakeFiles/eve_cvs.dir/cvs.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/cvs.cc.o.d"
  "/root/repo/src/cvs/delete_attribute.cc" "src/cvs/CMakeFiles/eve_cvs.dir/delete_attribute.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/delete_attribute.cc.o.d"
  "/root/repo/src/cvs/explain.cc" "src/cvs/CMakeFiles/eve_cvs.dir/explain.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/explain.cc.o.d"
  "/root/repo/src/cvs/extent.cc" "src/cvs/CMakeFiles/eve_cvs.dir/extent.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/extent.cc.o.d"
  "/root/repo/src/cvs/implication.cc" "src/cvs/CMakeFiles/eve_cvs.dir/implication.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/implication.cc.o.d"
  "/root/repo/src/cvs/legality.cc" "src/cvs/CMakeFiles/eve_cvs.dir/legality.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/legality.cc.o.d"
  "/root/repo/src/cvs/r_mapping.cc" "src/cvs/CMakeFiles/eve_cvs.dir/r_mapping.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/r_mapping.cc.o.d"
  "/root/repo/src/cvs/r_replacement.cc" "src/cvs/CMakeFiles/eve_cvs.dir/r_replacement.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/r_replacement.cc.o.d"
  "/root/repo/src/cvs/rewriting.cc" "src/cvs/CMakeFiles/eve_cvs.dir/rewriting.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/rewriting.cc.o.d"
  "/root/repo/src/cvs/svs_baseline.cc" "src/cvs/CMakeFiles/eve_cvs.dir/svs_baseline.cc.o" "gcc" "src/cvs/CMakeFiles/eve_cvs.dir/svs_baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergraph/CMakeFiles/eve_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/mkb/CMakeFiles/eve_mkb.dir/DependInfo.cmake"
  "/root/repo/build/src/esql/CMakeFiles/eve_esql.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/eve_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/eve_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eve_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eve_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eve_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
