file(REMOVE_RECURSE
  "libeve_cvs.a"
)
