# Empty compiler generated dependencies file for eve_cvs.
# This may be replaced when dependencies are built.
