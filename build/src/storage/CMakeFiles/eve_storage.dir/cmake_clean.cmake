file(REMOVE_RECURSE
  "CMakeFiles/eve_storage.dir/database.cc.o"
  "CMakeFiles/eve_storage.dir/database.cc.o.d"
  "CMakeFiles/eve_storage.dir/table.cc.o"
  "CMakeFiles/eve_storage.dir/table.cc.o.d"
  "libeve_storage.a"
  "libeve_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
