file(REMOVE_RECURSE
  "libeve_storage.a"
)
