# Empty compiler generated dependencies file for eve_storage.
# This may be replaced when dependencies are built.
