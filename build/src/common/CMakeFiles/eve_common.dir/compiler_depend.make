# Empty compiler generated dependencies file for eve_common.
# This may be replaced when dependencies are built.
