file(REMOVE_RECURSE
  "CMakeFiles/eve_common.dir/crc32.cc.o"
  "CMakeFiles/eve_common.dir/crc32.cc.o.d"
  "CMakeFiles/eve_common.dir/failpoint.cc.o"
  "CMakeFiles/eve_common.dir/failpoint.cc.o.d"
  "CMakeFiles/eve_common.dir/file_io.cc.o"
  "CMakeFiles/eve_common.dir/file_io.cc.o.d"
  "CMakeFiles/eve_common.dir/status.cc.o"
  "CMakeFiles/eve_common.dir/status.cc.o.d"
  "CMakeFiles/eve_common.dir/str_util.cc.o"
  "CMakeFiles/eve_common.dir/str_util.cc.o.d"
  "libeve_common.a"
  "libeve_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
