file(REMOVE_RECURSE
  "libeve_common.a"
)
