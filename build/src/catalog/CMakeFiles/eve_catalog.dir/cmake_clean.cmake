file(REMOVE_RECURSE
  "CMakeFiles/eve_catalog.dir/catalog.cc.o"
  "CMakeFiles/eve_catalog.dir/catalog.cc.o.d"
  "libeve_catalog.a"
  "libeve_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
