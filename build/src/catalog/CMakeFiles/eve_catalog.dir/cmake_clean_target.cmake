file(REMOVE_RECURSE
  "libeve_catalog.a"
)
