# Empty dependencies file for eve_catalog.
# This may be replaced when dependencies are built.
