file(REMOVE_RECURSE
  "CMakeFiles/eve_sql.dir/evolution_params.cc.o"
  "CMakeFiles/eve_sql.dir/evolution_params.cc.o.d"
  "CMakeFiles/eve_sql.dir/lexer.cc.o"
  "CMakeFiles/eve_sql.dir/lexer.cc.o.d"
  "CMakeFiles/eve_sql.dir/parser.cc.o"
  "CMakeFiles/eve_sql.dir/parser.cc.o.d"
  "CMakeFiles/eve_sql.dir/printer.cc.o"
  "CMakeFiles/eve_sql.dir/printer.cc.o.d"
  "libeve_sql.a"
  "libeve_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
