file(REMOVE_RECURSE
  "libeve_sql.a"
)
