# Empty compiler generated dependencies file for eve_sql.
# This may be replaced when dependencies are built.
