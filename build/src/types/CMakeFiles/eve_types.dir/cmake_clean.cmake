file(REMOVE_RECURSE
  "CMakeFiles/eve_types.dir/data_type.cc.o"
  "CMakeFiles/eve_types.dir/data_type.cc.o.d"
  "CMakeFiles/eve_types.dir/date.cc.o"
  "CMakeFiles/eve_types.dir/date.cc.o.d"
  "CMakeFiles/eve_types.dir/schema.cc.o"
  "CMakeFiles/eve_types.dir/schema.cc.o.d"
  "CMakeFiles/eve_types.dir/value.cc.o"
  "CMakeFiles/eve_types.dir/value.cc.o.d"
  "libeve_types.a"
  "libeve_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eve_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
