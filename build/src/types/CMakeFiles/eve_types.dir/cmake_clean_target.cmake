file(REMOVE_RECURSE
  "libeve_types.a"
)
