# Empty compiler generated dependencies file for eve_types.
# This may be replaced when dependencies are built.
