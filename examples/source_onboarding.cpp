// Source onboarding: a new information source joins the federation and
// publishes its MISD description at runtime (paper Sec. 1: ISs join and
// leave frequently). The published semantics immediately widen what CVS
// can preserve — demonstrated by deleting an attribute before and after
// the onboarding.

#include <cstdlib>
#include <iostream>

#include "eve/eve_system.h"
#include "workload/travel_agency.h"

namespace {

template <typename T>
T Unwrap(eve::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status() << std::endl;
    std::exit(1);
  }
  return result.MoveValue();
}

void Check(const eve::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << std::endl;
    std::exit(1);
  }
}

}  // namespace

int main() {
  // --- Before onboarding: the view cannot survive losing Customer.Addr.
  {
    eve::EveSystem system(Unwrap(eve::MakeTravelAgencyMkb(), "MKB"));
    Check(system.RegisterViewText(eve::AsiaCustomerSql()), "register");
    const eve::ChangeReport report = Unwrap(
        system.ApplyChange(
            eve::CapabilityChange::DeleteAttribute("Customer", "Addr")),
        "apply");
    std::cout << "== Without the Person source ==\n"
              << report.ToString() << "\n";
  }

  // --- With onboarding: the same change is survivable.
  eve::EveSystem system(Unwrap(eve::MakeTravelAgencyMkb(), "MKB"));
  Check(system.RegisterViewText(eve::AsiaCustomerSql()), "register");

  std::cout << "== IS8 joins and publishes its MISD description ==\n\n";
  Check(system.ExtendMkb(R"misd(
          SOURCE IS8 RELATION Person (Name string, SSN string, PAddr string)
          JOIN CONSTRAINT JCP BETWEEN Customer AND Person
              WHERE Customer.Name = Person.Name
          FUNCTION FADDR Customer.Addr = Person.PAddr
          PC PCP Person (Name, PAddr) SUPERSET Customer (Name, Addr)
        )misd"),
        "onboarding IS8");

  const eve::ChangeReport report = Unwrap(
      system.ApplyChange(
          eve::CapabilityChange::DeleteAttribute("Customer", "Addr")),
      "apply");
  std::cout << "== With the Person source (paper Ex. 4) ==\n"
            << report.ToString() << "\n"
            << (*system.GetView("AsiaCustomer"))->definition.ToString()
            << "\n";
  return 0;
}
