// Federation simulation with live data: materializes a view over the
// travel-agency database, lets the Customer source leave the federation,
// and shows that the synchronized view — evaluated over the surviving
// sources only — still answers the original question, with the extent
// relationship the PC constraints promised.

#include <cstdlib>
#include <iostream>

#include "cvs/cvs.h"
#include "esql/binder.h"
#include "esql/evaluator.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace {

template <typename T>
T Unwrap(eve::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status() << std::endl;
    std::exit(1);
  }
  return result.MoveValue();
}

void Check(const eve::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << std::endl;
    std::exit(1);
  }
}

}  // namespace

int main() {
  eve::Mkb mkb = Unwrap(eve::MakeTravelAgencyMkb(), "building MKB");
  Check(eve::AddAccidentInsPc(&mkb), "PC constraint");

  // The federation's current data.
  eve::Database db;
  Check(eve::PopulateTravelAgencyDatabase(mkb, &db, 80, /*seed=*/2026),
        "populating federation");

  // The marketing department's view: Asia-bound customers with ages.
  const eve::ViewDefinition view = Unwrap(
      eve::ParseAndBindView(R"sql(
        CREATE VIEW AsiaPassengers (VE = >=) AS
        SELECT C.Name (false, true), C.Age (false, true)
        FROM Customer C (true, true), FlightRes F
        WHERE (C.Name = F.PName) (false, true)
          AND (F.Dest = 'Asia') (false, false)
      )sql",
                            mkb.catalog()),
      "binding view");

  const eve::Table before =
      Unwrap(eve::EvaluateView(view, db, mkb.catalog()), "evaluating view");
  std::cout << "== AsiaPassengers, served by the Customer source ==\n"
            << before.ToString(8) << "\n";

  // The Customer source leaves the federation.
  const eve::CapabilityChange change =
      eve::CapabilityChange::DeleteRelation("Customer");
  std::cout << "== " << change.ToString()
            << " (the IS leaves the federation) ==\n\n";
  const eve::MkbEvolutionReport evolution =
      Unwrap(eve::EvolveMkb(mkb, change), "evolving MKB");

  const eve::CvsResult result = Unwrap(
      eve::SynchronizeDeleteRelation(view, "Customer", mkb, evolution.mkb),
      "running CVS");
  if (result.rewritings.empty()) {
    std::cout << "view disabled:\n";
    for (const std::string& diagnostic : result.diagnostics) {
      std::cout << "  " << diagnostic << "\n";
    }
    return 1;
  }
  const eve::SynchronizedView& best = result.rewritings.front();
  std::cout << "== Synchronized view (extent "
            << eve::ExtentRelationToString(best.legality.inferred_extent)
            << ", VE = >= satisfied) ==\n"
            << best.view.ToString() << "\n\n";

  // Drop the Customer table — the source is gone — and serve the new view
  // from the survivors. (The post-change catalog governs evaluation.)
  Check(db.DropTable("Customer"), "dropping departed source's table");
  const eve::Table after =
      Unwrap(eve::EvaluateView(best.view, db, evolution.mkb.catalog()),
             "evaluating synchronized view");
  std::cout << "== AsiaPassengers, served by Accident-Ins instead ==\n"
            << after.ToString(8) << "\n";

  std::cout << "every original answer is still present (VE = >=): "
            << (before.IsSubsetOf(after) ? "yes" : "NO") << "\n";
  return 0;
}
