// Federation simulation, in two acts.
//
// Act 1 (data level): materializes a view over the travel-agency database,
// lets the Customer source leave the federation, and shows that the
// synchronized view — evaluated over the surviving sources only — still
// answers the original question, with the extent relationship the PC
// constraints promised.
//
// Act 2 (unreliable transport): drives a FederationSimulator through a
// randomized fault schedule — leases, backoff, circuit breakers, degraded-
// mode provisional rewritings — and checks the convergence property: every
// view ends correctly rewritten, explicitly disabled, or provisional with
// a live lease. Exits nonzero on any violation, so chaos CI can run this
// binary under an EVE_FAILPOINTS matrix (the failpoint registry arms
// itself from the environment) and fail the build on silent wrongness.

#include <cstdlib>
#include <iostream>

#include "cvs/cvs.h"
#include "esql/binder.h"
#include "esql/evaluator.h"
#include "federation/simulator.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace {

template <typename T>
T Unwrap(eve::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status() << std::endl;
    std::exit(1);
  }
  return result.MoveValue();
}

void Check(const eve::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << std::endl;
    std::exit(1);
  }
}

// One simulator run: randomized transport faults plus a scripted capability
// change while sources are degrading. Returns the number of convergence
// violations (0 = the federation layer kept its promise).
size_t RunFaultSchedule(uint64_t seed, bool heal_within_lease) {
  eve::Mkb mkb = Unwrap(eve::MakeTravelAgencyMkb(), "building MKB");
  Check(eve::AddAccidentInsPc(&mkb), "PC constraint");
  eve::EveSystem system(std::move(mkb));
  Check(system.RegisterViewText(eve::CustomerPassengersAsiaSql()),
        "registering view");
  Check(system.RegisterViewText(eve::AsiaCustomerSql()), "registering view");

  eve::federation::SimOptions options;
  options.ticks = 400;
  options.seed = seed;
  options.fault_rate = heal_within_lease ? 0.02 : 0.08;
  options.heal_within_lease = heal_within_lease;
  if (!heal_within_lease) options.config.lease_ticks = 40;
  eve::federation::FederationSimulator sim(&system, options);
  sim.RandomizeFaults();
  sim.ScheduleChange(60, eve::CapabilityChange::DeleteRelation("RentACar"));
  sim.ScheduleChange(120, eve::CapabilityChange::DeleteRelation("Customer"));

  const eve::federation::SimResult result =
      Unwrap(sim.Run(), "running fault schedule");
  std::cout << "  seed " << seed << " ("
            << (heal_within_lease ? "healed-within-lease" : "harsh") << "): "
            << result.stats.probes << " probes, " << result.stats.failures
            << " failed, " << result.stats.state_transitions
            << " transitions, " << result.stats.departures << " departures, "
            << result.fault_windows << " fault windows, "
            << result.views_rewritten << " rewrites ("
            << result.provisional_outcomes << " provisional), "
            << result.views_disabled << " disables\n";
  for (const std::string& violation : result.violations) {
    std::cerr << "  CONVERGENCE VIOLATION: " << violation << "\n";
  }
  return result.violations.size();
}

}  // namespace

int main() {
  eve::Mkb mkb = Unwrap(eve::MakeTravelAgencyMkb(), "building MKB");
  Check(eve::AddAccidentInsPc(&mkb), "PC constraint");

  // The federation's current data.
  eve::Database db;
  Check(eve::PopulateTravelAgencyDatabase(mkb, &db, 80, /*seed=*/2026),
        "populating federation");

  // The marketing department's view: Asia-bound customers with ages.
  const eve::ViewDefinition view = Unwrap(
      eve::ParseAndBindView(R"sql(
        CREATE VIEW AsiaPassengers (VE = >=) AS
        SELECT C.Name (false, true), C.Age (false, true)
        FROM Customer C (true, true), FlightRes F
        WHERE (C.Name = F.PName) (false, true)
          AND (F.Dest = 'Asia') (false, false)
      )sql",
                            mkb.catalog()),
      "binding view");

  const eve::Table before =
      Unwrap(eve::EvaluateView(view, db, mkb.catalog()), "evaluating view");
  std::cout << "== AsiaPassengers, served by the Customer source ==\n"
            << before.ToString(8) << "\n";

  // The Customer source leaves the federation.
  const eve::CapabilityChange change =
      eve::CapabilityChange::DeleteRelation("Customer");
  std::cout << "== " << change.ToString()
            << " (the IS leaves the federation) ==\n\n";
  const eve::MkbEvolutionReport evolution =
      Unwrap(eve::EvolveMkb(mkb, change), "evolving MKB");

  const eve::CvsResult result = Unwrap(
      eve::SynchronizeDeleteRelation(view, "Customer", mkb, evolution.mkb),
      "running CVS");
  if (result.rewritings.empty()) {
    std::cout << "view disabled:\n";
    for (const std::string& diagnostic : result.diagnostics) {
      std::cout << "  " << diagnostic << "\n";
    }
    return 1;
  }
  const eve::SynchronizedView& best = result.rewritings.front();
  std::cout << "== Synchronized view (extent "
            << eve::ExtentRelationToString(best.legality.inferred_extent)
            << ", VE = >= satisfied) ==\n"
            << best.view.ToString() << "\n\n";

  // Drop the Customer table — the source is gone — and serve the new view
  // from the survivors. (The post-change catalog governs evaluation.)
  Check(db.DropTable("Customer"), "dropping departed source's table");
  const eve::Table after =
      Unwrap(eve::EvaluateView(best.view, db, evolution.mkb.catalog()),
             "evaluating synchronized view");
  std::cout << "== AsiaPassengers, served by Accident-Ins instead ==\n"
            << after.ToString(8) << "\n";

  std::cout << "every original answer is still present (VE = >=): "
            << (before.IsSubsetOf(after) ? "yes" : "NO") << "\n";
  if (!before.IsSubsetOf(after)) return 1;

  // Act 2: the same federation under an unreliable transport.
  std::cout << "\n== Randomized fault schedules (convergence check) ==\n";
  size_t violations = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    violations += RunFaultSchedule(seed, /*heal_within_lease=*/true);
    violations += RunFaultSchedule(seed, /*heal_within_lease=*/false);
  }
  if (violations > 0) {
    std::cerr << violations << " convergence violation(s)\n";
    return 1;
  }
  std::cout << "all schedules converged: every view correctly rewritten, "
               "explicitly disabled, or provisional with a live lease\n";
  return 0;
}
