// Data-warehouse churn simulation — the paper's motivating scenario
// (Sec. 1): a large information space where sources change capabilities
// frequently. Builds a grid federation, registers a pool of materialized
// views, then deletes randomly chosen relations round after round,
// reporting how many views CVS keeps alive versus how many a static
// (non-evolvable) view system would have lost.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <random>
#include <set>

#include "eve/eve_system.h"
#include "workload/generator.h"

namespace {

template <typename T>
T Unwrap(eve::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status() << std::endl;
    std::exit(1);
  }
  return result.MoveValue();
}

}  // namespace

int main() {
  constexpr size_t kRounds = 6;
  constexpr size_t kNumViews = 24;

  const eve::Mkb initial =
      Unwrap(eve::MakeGridMkb(4, 4), "building grid federation");
  eve::EveSystem system(initial);

  std::mt19937_64 rng(2026);
  // Views a static (non-evolvable) system would have disabled: a static
  // view dies the first time any of its relations changes.
  std::set<std::string> statically_lost;
  for (size_t i = 0; i < kNumViews; ++i) {
    eve::ViewDefinition view = Unwrap(
        eve::MakeRandomConnectedView(initial, &rng, 3), "generating view");
    view.set_name("warehouse_view_" + std::to_string(i));
    const eve::Status status = system.RegisterView(view);
    if (!status.ok()) {
      std::cerr << "register: " << status << std::endl;
      return 1;
    }
  }

  std::cout << "== Warehouse churn: 4x4 grid federation, " << kNumViews
            << " materialized views ==\n\n";
  std::printf("%-8s %-24s %-12s %-12s %-14s %s\n", "round", "change",
              "rewritten", "disabled", "still active",
              "static system would have");

  for (size_t round = 0; round < kRounds; ++round) {
    // Pick a surviving relation that at least one active view uses.
    std::string victim;
    const std::vector<std::string> relations =
        system.mkb().catalog().RelationNames();
    std::uniform_int_distribution<size_t> pick(0, relations.size() - 1);
    for (int attempt = 0; attempt < 64 && victim.empty(); ++attempt) {
      const std::string candidate = relations[pick(rng)];
      if (!system
               .AffectedViews(
                   eve::CapabilityChange::DeleteRelation(candidate))
               .empty()) {
        victim = candidate;
      }
    }
    if (victim.empty()) break;  // no view uses any surviving relation

    const eve::CapabilityChange change =
        eve::CapabilityChange::DeleteRelation(victim);
    for (const std::string& name : system.AffectedViews(change)) {
      statically_lost.insert(name);
    }
    const eve::ChangeReport report =
        Unwrap(system.ApplyChange(change), "applying change");
    std::printf("%-8zu %-24s %-12zu %-12zu %-14zu lost %zu views\n",
                round + 1, change.ToString().c_str(),
                report.CountOutcome(eve::ViewOutcomeKind::kRewritten),
                report.CountOutcome(eve::ViewOutcomeKind::kDisabled),
                system.NumActiveViews(), statically_lost.size());
  }

  const size_t static_survivors = kNumViews - statically_lost.size();
  std::cout << "\nsummary: a static view system would have "
            << static_survivors << "/" << kNumViews
            << " views left; EVE/CVS kept " << system.NumActiveViews()
            << "/" << kNumViews << " alive ("
            << system.NumActiveViews() - static_survivors
            << " views saved by synchronization).\n";
  return 0;
}
