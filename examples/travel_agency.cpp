// Travel-agency lifecycle demo: the full EVE three-step strategy driven
// through the EveSystem facade. Registers several E-SQL views over the
// Fig. 2 federation, then streams a sequence of IS capability changes and
// prints each change report — rewritten views keep serving, incurable
// views are disabled.

#include <cstdlib>
#include <iostream>

#include "eve/eve_system.h"
#include "workload/travel_agency.h"

namespace {

void Check(const eve::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << std::endl;
    std::exit(1);
  }
}

template <typename T>
T Unwrap(eve::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status() << std::endl;
    std::exit(1);
  }
  return result.MoveValue();
}

void PrintViews(const eve::EveSystem& system) {
  for (const std::string& name : system.ViewNames()) {
    const eve::RegisteredView* view = *system.GetView(name);
    std::cout << "  [" << (view->state == eve::ViewState::kActive
                               ? "active"
                               : "DISABLED")
              << "] " << name << "\n";
    if (view->state == eve::ViewState::kActive) {
      std::cout << view->definition.ToString() << "\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  eve::Mkb mkb = Unwrap(eve::MakeTravelAgencyMkb(), "building MKB");
  Check(eve::AddPersonExtension(&mkb), "Person extension");
  Check(eve::AddAccidentInsPc(&mkb), "PC constraint");

  eve::EveSystem system(std::move(mkb));

  // Three views with different evolution preferences.
  Check(system.RegisterViewText(eve::CustomerPassengersAsiaSql()),
        "registering CustomerPassengersAsia");
  Check(system.RegisterViewText(eve::AsiaCustomerSql()),
        "registering AsiaCustomer");
  Check(system.RegisterViewText(R"sql(
          CREATE VIEW HotelCars AS
          SELECT H.City (false, true), R.Company (false, true)
          FROM Hotels H, RentACar R
          WHERE H.Address = R.Location
        )sql"),
        "registering HotelCars");

  std::cout << "== Registered views ==\n";
  PrintViews(system);

  const eve::CapabilityChange changes[] = {
      eve::CapabilityChange::DeleteAttribute("Customer", "Addr"),
      eve::CapabilityChange::RenameAttribute("FlightRes", "Dest",
                                             "Destination"),
      eve::CapabilityChange::DeleteRelation("Customer"),
      eve::CapabilityChange::DeleteRelation("RentACar"),
  };
  for (const eve::CapabilityChange& change : changes) {
    std::cout << "== Applying: " << change.ToString() << " ==\n";
    const eve::ChangeReport report =
        Unwrap(system.ApplyChange(change), "applying change");
    std::cout << report.ToString() << "\n";
  }

  std::cout << "== Final state (" << system.NumActiveViews() << "/"
            << system.NumViews() << " views still active) ==\n";
  PrintViews(system);

  std::cout << "== Change history ==\n";
  for (const eve::ChangeReport& report : system.change_log()) {
    std::cout << "  " << report.change.ToString() << ": "
              << report.CountOutcome(eve::ViewOutcomeKind::kRewritten)
              << " rewritten, "
              << report.CountOutcome(eve::ViewOutcomeKind::kDisabled)
              << " disabled\n";
  }
  return 0;
}
