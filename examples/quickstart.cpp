// Quickstart: reproduces the paper's running example end to end.
//
//  1. Build the Fig. 2 travel-agency MKB.
//  2. Define the Customer-Passengers-Asia view (Eq. 5) in E-SQL.
//  3. Apply the capability change "delete-relation Customer".
//  4. Run CVS and print every legal rewriting — including the paper's
//     Eq. (13) rewriting through Accident-Ins with Age = f(Birthday).

#include <cstdlib>
#include <iostream>

#include "cvs/cvs.h"
#include "esql/binder.h"
#include "esql/evaluator.h"
#include "mkb/evolution.h"
#include "workload/travel_agency.h"

namespace {

// Aborts with a message when a fallible step fails (example-only idiom).
template <typename T>
T Unwrap(eve::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status() << std::endl;
    std::exit(1);
  }
  return result.MoveValue();
}

void Check(const eve::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status << std::endl;
    std::exit(1);
  }
}

}  // namespace

int main() {
  // --- 1. The meta-knowledge base (paper Fig. 2) -------------------------
  eve::Mkb mkb = Unwrap(eve::MakeTravelAgencyMkb(), "building MKB");
  Check(eve::AddAccidentInsPc(&mkb), "adding PC constraint");
  std::cout << "== MKB ==\n" << mkb.ToString() << "\n";

  // --- 2. The E-SQL view (paper Eq. 5) ------------------------------------
  const eve::ViewDefinition view =
      Unwrap(eve::ParseAndBindView(eve::CustomerPassengersAsiaSql(),
                                   mkb.catalog()),
             "parsing view");
  std::cout << "== View ==\n" << view.ToString() << "\n\n";

  // --- 3. The capability change ------------------------------------------
  const eve::CapabilityChange change =
      eve::CapabilityChange::DeleteRelation("Customer");
  eve::MkbEvolutionReport evolution =
      Unwrap(eve::EvolveMkb(mkb, change), "evolving MKB");
  std::cout << "== " << change.ToString() << " ==\ndropped constraints:";
  for (const std::string& id : evolution.dropped_constraints) {
    std::cout << " " << id;
  }
  std::cout << "\n\n";

  // --- 4. CVS ---------------------------------------------------------------
  const eve::CvsResult result = Unwrap(
      eve::SynchronizeDeleteRelation(view, "Customer", mkb, evolution.mkb),
      "running CVS");

  std::cout << "== Legal rewritings (" << result.rewritings.size()
            << ") ==\n";
  for (const eve::SynchronizedView& rewriting : result.rewritings) {
    std::cout << rewriting.ToString() << "\n\n";
  }
  for (const std::string& diagnostic : result.diagnostics) {
    std::cout << "note: " << diagnostic << "\n";
  }

  if (result.rewritings.empty()) {
    std::cerr << "expected CVS to preserve the view" << std::endl;
    return 1;
  }

  // --- 5. Evaluate old and new over a consistent database -----------------
  eve::Database db;
  Check(eve::PopulateTravelAgencyDatabase(mkb, &db, 40, /*seed=*/7),
        "populating database");
  const eve::FunctionRegistry registry = eve::FunctionRegistry::Default();
  const eve::Table before =
      Unwrap(eve::EvaluateView(view, db, mkb.catalog(), &registry),
             "evaluating original view");
  const eve::Table after = Unwrap(
      eve::EvaluateView(result.rewritings.front().view, db,
                        evolution.mkb.catalog(), &registry),
      "evaluating rewritten view");
  std::cout << "== Extents ==\noriginal (" << before.NumRows() << " rows)\n"
            << before.ToString(5) << "\nrewritten (" << after.NumRows()
            << " rows)\n"
            << after.ToString(5) << std::endl;
  return 0;
}
